// Command atrd is the ATR simulation daemon: a long-running HTTP service
// that accepts simulation and sweep jobs, executes them on the sweep
// engine's work-stealing pool, and streams progress as NDJSON/SSE.
//
//	atrd [-addr :8437] [-state atrd-state] [-n instr]
//	     [-sim-workers N] [-job-workers N] [-queue N]
//	     [-rate r] [-burst N] [-cache-cap N] [-runner-cache-cap N]
//	     [-retries N] [-backoff d] [-drain d]
//
// API (all JSON):
//
//	POST   /v1/jobs               submit {"kind":"grid","grid":"fig10"} etc.;
//	                              ?watch=1 streams progress on the same
//	                              connection (NDJSON, or SSE via Accept)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	GET    /v1/jobs/{id}/events   live progress stream
//	GET    /v1/jobs/{id}/manifest deterministic result manifest — byte-
//	                              identical to offline atrsweep output
//	GET    /v1/jobs/{id}/perf     scheduling telemetry with provenance
//	DELETE /v1/jobs/{id}          cancel
//	GET    /healthz               liveness (503 while draining)
//	GET    /metrics               daemon counters (obs.ServerInfo)
//
// Backpressure: a full job queue or an exhausted per-client token bucket
// answers 429 with Retry-After. On SIGINT/SIGTERM the daemon drains:
// in-flight runs finish and are journaled, incomplete jobs park in the
// state dir, and the next atrd over the same -state resumes them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atr/internal/server"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	state := flag.String("state", "atrd-state", "state directory (job specs, journals, manifests)")
	instr := flag.Uint64("n", 40000, "default instructions per run for specs that omit it")
	simWorkers := flag.Int("sim-workers", 0, "simulation pool width per job (0 selects GOMAXPROCS)")
	jobWorkers := flag.Int("job-workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "bounded job queue depth (beyond it: 429 + Retry-After)")
	rate := flag.Float64("rate", 5, "per-client submissions/sec (negative disables limiting)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	cacheCap := flag.Int("cache-cap", 65536, "content-addressed result cache entries")
	runnerCacheCap := flag.Int("runner-cache-cap", 0, "shared program/memo cache entries (0 selects default)")
	retries := flag.Int("retries", 1, "retries per failing run")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first-retry backoff (doubles per retry)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	if *queue < 1 || *jobWorkers < 1 {
		fmt.Fprintln(os.Stderr, "atrd: -queue and -job-workers must be >= 1")
		os.Exit(2)
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "atrd: -retries must be >= 0")
		os.Exit(2)
	}

	srv, err := server.New(server.Options{
		StateDir:       *state,
		DefaultInstr:   *instr,
		SimWorkers:     *simWorkers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queue,
		Rate:           *rate,
		Burst:          *burst,
		CacheCap:       *cacheCap,
		RunnerCacheCap: *runnerCacheCap,
		Retries:        *retries,
		Backoff:        *backoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("atrd: serving on %s (state %s)", *addr, *state)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "atrd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("atrd: draining (budget %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = httpSrv.Shutdown(dctx)
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("atrd: drain incomplete: %v (journals stay resumable)", err)
		os.Exit(1)
	}
	log.Printf("atrd: drained cleanly; incomplete jobs will resume on restart")
}
