// Command atrd is the ATR simulation daemon: a long-running HTTP service
// that accepts simulation and sweep jobs, executes them on the sweep
// engine's work-stealing pool, and streams progress as NDJSON/SSE.
//
//	atrd [-addr :8437] [-state atrd-state] [-n instr]
//	     [-sim-workers N] [-job-workers N] [-queue N]
//	     [-rate r] [-burst N] [-cache-cap N] [-runner-cache-cap N]
//	     [-retries N] [-backoff d] [-drain d]
//	     [-log-format text|json] [-log-level debug|info|warn|error] [-pprof]
//
// API (all JSON):
//
//	POST   /v1/jobs               submit {"kind":"grid","grid":"fig10"} etc.;
//	                              ?watch=1 streams progress on the same
//	                              connection (NDJSON, or SSE via Accept)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	GET    /v1/jobs/{id}/events   live progress stream
//	GET    /v1/jobs/{id}/manifest deterministic result manifest — byte-
//	                              identical to offline atrsweep output
//	GET    /v1/jobs/{id}/perf     scheduling telemetry with provenance
//	DELETE /v1/jobs/{id}          cancel
//	GET    /healthz               liveness (503 while draining)
//	GET    /metrics               Prometheus text exposition; the legacy
//	                              JSON view (obs.ServerInfo) with
//	                              Accept: application/json
//	GET    /debug/pprof/...       runtime profiles, only with -pprof
//
// Backpressure: a full job queue or an exhausted per-client token bucket
// answers 429 with Retry-After. On SIGINT/SIGTERM the daemon drains:
// in-flight runs finish and are journaled, incomplete jobs park in the
// state dir, and the next atrd over the same -state resumes them.
//
// Distributed mode — the same binary plays both cluster roles:
//
//	atrd -coordinator [-addr :8437] [-state dir] [-heartbeat-timeout d]
//	     [-lease-timeout d] [-max-active N] [-rate r] [-burst N]
//	atrd -join http://coordinator:8437 [-name w1] [-addr :8438]
//	     [-sim-workers N] [-poll-interval d] [-retries N] [-backoff d]
//
// A coordinator serves the identical /v1/jobs API (atrctl works
// unchanged) but shards grid units across joined workers instead of
// executing locally, merging uploads into manifests byte-identical to a
// single-node run. A joined worker executes leased units on the sweep
// engine's per-unit path and serves only /healthz and /metrics itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atr/internal/cluster"
	"atr/internal/server"
)

// newLogger builds the daemon's slog logger from the -log-format and
// -log-level flags. It exits with a usage error on unknown values rather
// than silently falling back — a typo in a service flag should be loud.
func newLogger(format, level string) *slog.Logger {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "atrd: unknown -log-level %q (want debug|info|warn|error)\n", level)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts))
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	default:
		fmt.Fprintf(os.Stderr, "atrd: unknown -log-format %q (want text|json)\n", format)
		os.Exit(2)
		return nil
	}
}

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	state := flag.String("state", "atrd-state", "state directory (job specs, journals, manifests)")
	instr := flag.Uint64("n", 40000, "default instructions per run for specs that omit it")
	simWorkers := flag.Int("sim-workers", 0, "simulation pool width per job (0 selects GOMAXPROCS)")
	jobWorkers := flag.Int("job-workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "bounded job queue depth (beyond it: 429 + Retry-After)")
	rate := flag.Float64("rate", 5, "per-client submissions/sec (negative disables limiting)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	cacheCap := flag.Int("cache-cap", 65536, "content-addressed result cache entries")
	runnerCacheCap := flag.Int("runner-cache-cap", 0, "shared program/memo cache entries (0 selects default)")
	retries := flag.Int("retries", 1, "retries per failing run")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first-retry backoff (doubles per retry)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator: shard grids across joined workers")
	join := flag.String("join", "", "run as cluster worker joined to this coordinator URL")
	name := flag.String("name", "", "worker name, stable across restarts (default: hostname)")
	hbTimeout := flag.Duration("heartbeat-timeout", 10*time.Second, "coordinator: evict workers silent this long")
	leaseTimeout := flag.Duration("lease-timeout", 60*time.Second, "coordinator: reclaim unit leases unsatisfied this long")
	pollInterval := flag.Duration("poll-interval", 250*time.Millisecond, "worker: idle sleep between empty polls")
	maxActive := flag.Int("max-active", 0, "coordinator: default per-tenant active-job quota (0 = unlimited)")
	flag.Parse()

	if *coordinator && *join != "" {
		fmt.Fprintln(os.Stderr, "atrd: -coordinator and -join are mutually exclusive")
		os.Exit(2)
	}
	if *coordinator {
		os.Exit(runCoordinator(newLogger(*logFormat, *logLevel), coordArgs{
			addr: *addr, state: *state, instr: *instr,
			hbTimeout: *hbTimeout, leaseTimeout: *leaseTimeout,
			rate: *rate, burst: *burst, maxActive: *maxActive, cacheCap: *cacheCap,
			drain: *drain,
		}))
	}
	if *join != "" {
		os.Exit(runWorker(newLogger(*logFormat, *logLevel), workerArgs{
			coordinator: *join, name: *name, addr: *addr,
			simWorkers: *simWorkers, retries: *retries, backoff: *backoff,
			pollInterval: *pollInterval,
		}))
	}

	if *queue < 1 || *jobWorkers < 1 {
		fmt.Fprintln(os.Stderr, "atrd: -queue and -job-workers must be >= 1")
		os.Exit(2)
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "atrd: -retries must be >= 0")
		os.Exit(2)
	}

	logger := newLogger(*logFormat, *logLevel)

	srv, err := server.New(server.Options{
		StateDir:       *state,
		DefaultInstr:   *instr,
		SimWorkers:     *simWorkers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queue,
		Rate:           *rate,
		Burst:          *burst,
		CacheCap:       *cacheCap,
		RunnerCacheCap: *runnerCacheCap,
		Retries:        *retries,
		Backoff:        *backoff,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrd:", err)
		os.Exit(1)
	}

	// The daemon mux stays profiler-free; -pprof mounts the profiler on an
	// outer mux so the flag is the only thing deciding exposure.
	var handler http.Handler = srv
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "state", *state, "pprof", *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "atrd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining", "budget", drain.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = httpSrv.Shutdown(dctx)
	if err := srv.Shutdown(dctx); err != nil {
		logger.Error("drain incomplete; journals stay resumable", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly; incomplete jobs will resume on restart")
}

type coordArgs struct {
	addr, state  string
	instr        uint64
	hbTimeout    time.Duration
	leaseTimeout time.Duration
	rate         float64
	burst        int
	maxActive    int
	cacheCap     int
	drain        time.Duration
}

// runCoordinator serves the cluster control plane: worker membership,
// unit leasing, and journal merging over the persistent job store.
func runCoordinator(logger *slog.Logger, a coordArgs) int {
	c, err := cluster.NewCoordinator(cluster.Options{
		StateDir:         a.state,
		DefaultInstr:     a.instr,
		HeartbeatTimeout: a.hbTimeout,
		LeaseTimeout:     a.leaseTimeout,
		Rate:             a.rate,
		Burst:            a.burst,
		MaxActive:        a.maxActive,
		CacheCap:         a.cacheCap,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrd:", err)
		return 1
	}
	httpSrv := &http.Server{Addr: a.addr, Handler: c}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("coordinating", "addr", a.addr, "state", a.state,
		"heartbeat_timeout", a.hbTimeout.String(), "lease_timeout", a.leaseTimeout.String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "atrd:", err)
		return 1
	case <-ctx.Done():
	}

	dctx, cancel := context.WithTimeout(context.Background(), a.drain)
	defer cancel()
	_ = httpSrv.Shutdown(dctx)
	c.Close()
	logger.Info("coordinator stopped; in-flight jobs resume from the job store on restart")
	return 0
}

type workerArgs struct {
	coordinator, name, addr string
	simWorkers              int
	retries                 int
	backoff                 time.Duration
	pollInterval            time.Duration
}

// runWorker joins the fleet: register, heartbeat, poll for unit leases,
// execute them on the engine's per-unit path, upload records. The
// worker's own HTTP surface is just /healthz and /metrics.
func runWorker(logger *slog.Logger, a workerArgs) int {
	if a.name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			fmt.Fprintln(os.Stderr, "atrd: -name required (hostname unavailable)")
			return 2
		}
		a.name = host
	}
	w := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator:  a.coordinator,
		Name:         a.name,
		Addr:         a.addr,
		SimWorkers:   a.simWorkers,
		Retries:      a.retries,
		Backoff:      a.backoff,
		PollInterval: a.pollInterval,
		Logger:       logger,
	})
	if a.addr != "" {
		httpSrv := &http.Server{Addr: a.addr, Handler: w.Handler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("worker http", "err", err)
			}
		}()
		defer httpSrv.Close()
	}
	logger.Info("joined", "coordinator", a.coordinator, "name", a.name, "addr", a.addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "atrd:", err)
		return 1
	}
	logger.Info("worker stopped")
	return 0
}
