// Command atrtop is a polling terminal dashboard for an atrd daemon: job
// throughput, queue depth, latency quantiles, cache effectiveness, and a
// sparkline of recent run throughput, refreshed in place.
//
//	atrtop [-server http://localhost:8437] [-interval 2s] [-n count] [-once]
//
// Every refresh scrapes GET /metrics (Prometheus text exposition) and runs
// it through the in-repo parser and linter before rendering, so atrtop
// doubles as an exposition conformance check: CI runs `atrtop -once`
// against a live daemon and a malformed exposition fails the build.
//
// Pointed at a cluster coordinator (same flag, same scrape), the
// atr_cluster_* families light up an extra fleet section: live workers,
// lease traffic, steal-backs, duplicate uploads, and quota rejections.
//
// Exit status: 0 success, 1 scrape/parse/lint failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"atr/internal/telemetry"
)

// snapshot is one scrape reduced to the dashboard's numbers.
type snapshot struct {
	at   time.Time
	fams map[string]telemetry.Family

	runsExec float64
	httpReqs float64
}

func main() {
	server := flag.String("server", envOr("ATRD_SERVER", "http://localhost:8437"), "atrd base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	count := flag.Int("n", 0, "refresh this many times then exit (0: until interrupted)")
	once := flag.Bool("once", false, "scrape, lint, and print one static report (no screen clearing)")
	flag.Parse()

	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "atrtop: -interval must be positive")
		os.Exit(2)
	}

	base := strings.TrimRight(*server, "/")
	var prev *snapshot
	var history []float64 // runs/sec per tick, for the sparkline
	iter := 0
	for {
		cur, err := scrape(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrtop:", err)
			os.Exit(1)
		}
		if !*once {
			if prev != nil {
				dt := cur.at.Sub(prev.at).Seconds()
				if dt > 0 {
					history = append(history, (cur.runsExec-prev.runsExec)/dt)
					if len(history) > 60 {
						history = history[len(history)-60:]
					}
				}
			}
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, base, cur, prev, history)
		if *once {
			fmt.Printf("\nexposition OK: %d families parsed and linted\n", len(cur.fams))
			return
		}
		iter++
		if *count > 0 && iter >= *count {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// scrape fetches, parses, and lints one exposition. A response that fails
// the linter is an error, not a render: the dashboard never displays
// numbers from an exposition it cannot vouch for.
func scrape(base string) (*snapshot, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse exposition: %w", err)
	}
	if err := telemetry.Lint(fams); err != nil {
		return nil, fmt.Errorf("lint exposition: %w", err)
	}
	s := &snapshot{at: time.Now(), fams: make(map[string]telemetry.Family, len(fams))}
	for _, f := range fams {
		s.fams[f.Name] = f
	}
	s.runsExec = s.value("atr_runs_executed_total")
	s.httpReqs = s.value("atr_http_requests_total")
	return s, nil
}

// value sums a family's samples — the total across label sets for labeled
// counters, the plain value for unlabeled ones. Missing families read 0.
func (s *snapshot) value(name string) float64 {
	f, ok := s.fams[name]
	if !ok {
		return 0
	}
	total := 0.0
	for _, smp := range f.Samples {
		total += smp.Value
	}
	return total
}

// quantiles estimates p50/p95/p99 for a histogram family, merged across
// label sets. ok is false when the family is absent or empty.
func (s *snapshot) quantiles(name string) (p50, p95, p99 float64, ok bool) {
	f, found := s.fams[name]
	if !found {
		return 0, 0, 0, false
	}
	bounds, cum, _, count, err := telemetry.MergedHistogram(f)
	if err != nil || count == 0 {
		return 0, 0, 0, false
	}
	return telemetry.Quantile(bounds, cum, 0.50),
		telemetry.Quantile(bounds, cum, 0.95),
		telemetry.Quantile(bounds, cum, 0.99), true
}

func render(w *os.File, base string, cur, prev *snapshot, history []float64) {
	uptime := time.Duration(cur.value("atr_uptime_seconds") * float64(time.Second))
	fmt.Fprintf(w, "atrtop — %s    up %s    %s\n\n", base, uptime.Round(time.Second), buildLine(cur))

	fmt.Fprintf(w, "jobs     queued %.0f/%.0f  running %.0f  |  submitted %.0f  done %.0f  failed %.0f  cancelled %.0f  recovered %.0f\n",
		cur.value("atr_jobs_queued"), cur.value("atr_queue_capacity"), cur.value("atr_jobs_running"),
		cur.value("atr_jobs_submitted_total"), cur.value("atr_jobs_done_total"),
		cur.value("atr_jobs_failed_total"), cur.value("atr_jobs_cancelled_total"),
		cur.value("atr_jobs_recovered_total"))

	hits := cur.value("atr_result_cache_hits_total")
	misses := cur.value("atr_result_cache_misses_total")
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	fmt.Fprintf(w, "runs     executed %.0f%s  from-cache %.0f  |  result cache %.1f%% hit (%.0f/%.0f lookups), %.0f/%.0f resident\n",
		cur.runsExec, rate(cur, prev, cur.runsExec, prevRuns(prev)), cur.value("atr_runs_from_cache_total"),
		hitRate, hits, hits+misses,
		cur.value("atr_result_cache_size"), cur.value("atr_result_cache_capacity"))

	if groups := cur.value("atr_batch_groups_total"); groups > 0 {
		batched := cur.value("atr_runs_batched_total")
		fmt.Fprintf(w, "lanes    batched %.0f runs in %.0f groups  |  occupancy %.1f lanes/group\n",
			batched, groups, batched/groups)
	}

	fmt.Fprintf(w, "http     requests %.0f%s  |  limiter clients %.0f  rate-limited %.0f\n",
		cur.httpReqs, rate(cur, prev, cur.httpReqs, prevHTTP(prev)),
		cur.value("atr_rate_clients"), cur.value("atr_rate_limited_total"))

	fmt.Fprintf(w, "runner   memo hits %.0f  evictions %.0f  resident %.0f  |  programs %.0f (hits %.0f)\n",
		cur.value("atr_runner_memo_hits_total"), cur.value("atr_runner_memo_evictions_total"),
		cur.value("atr_runner_memo_size"),
		cur.value("atr_runner_programs_cached"), cur.value("atr_runner_program_hits_total"))

	// A coordinator exposition carries the atr_cluster_* families; render
	// the fleet line only then, so single-node dashboards are unchanged.
	if _, isCluster := cur.fams["atr_cluster_workers"]; isCluster {
		fmt.Fprintf(w, "cluster  workers %.0f (evicted %.0f)  jobs active %.0f  |  units pending %.0f  leased %.0f\n",
			cur.value("atr_cluster_workers"), cur.value("atr_cluster_workers_evicted_total"),
			cur.value("atr_cluster_jobs_active"),
			cur.value("atr_cluster_units_pending"), cur.value("atr_cluster_units_leased"))
		fmt.Fprintf(w, "         dispatched %.0f  uploaded %.0f  stolen %.0f  dup %.0f  from-cache %.0f  |  quota-429 %.0f\n",
			cur.value("atr_cluster_units_dispatched_total"), cur.value("atr_cluster_units_uploaded_total"),
			cur.value("atr_cluster_units_stolen_total"), cur.value("atr_cluster_duplicate_uploads_total"),
			cur.value("atr_cluster_units_from_cache_total"), cur.value("atr_cluster_quota_rejected_total"))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-22s %10s %10s %10s\n", "latency", "p50", "p95", "p99")
	for _, h := range []struct{ label, family string }{
		{"http request", "atr_http_request_duration_seconds"},
		{"queue wait", "atr_queue_wait_seconds"},
		{"run duration", "atr_run_duration_seconds"},
	} {
		p50, p95, p99, ok := cur.quantiles(h.family)
		if !ok {
			fmt.Fprintf(w, "%-22s %10s %10s %10s\n", h.label, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-22s %10s %10s %10s\n", h.label, fmtSec(p50), fmtSec(p95), fmtSec(p99))
	}

	if len(history) > 0 {
		fmt.Fprintf(w, "\nthroughput %s %.1f runs/s\n", sparkline(history), history[len(history)-1])
	}
}

func prevRuns(prev *snapshot) float64 {
	if prev == nil {
		return 0
	}
	return prev.runsExec
}

func prevHTTP(prev *snapshot) float64 {
	if prev == nil {
		return 0
	}
	return prev.httpReqs
}

// rate renders a per-second delta suffix like " (12.3/s)" once two scrapes
// exist; the first tick has no baseline and renders nothing.
func rate(cur, prev *snapshot, curVal, prevVal float64) string {
	if prev == nil {
		return ""
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return ""
	}
	return fmt.Sprintf(" (%.1f/s)", (curVal-prevVal)/dt)
}

// fmtSec renders a duration in seconds with a sensible unit.
func fmtSec(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

var sparks = []rune("▁▂▃▄▅▆▇█")

// sparkline scales the series to its own max — the shape of recent
// throughput, not an absolute scale.
func sparkline(xs []float64) string {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if max > 0 {
			i = int(math.Round(x / max * float64(len(sparks)-1)))
			if i < 0 {
				i = 0
			}
			if i >= len(sparks) {
				i = len(sparks) - 1
			}
		}
		b.WriteRune(sparks[i])
	}
	return b.String()
}

func buildLine(s *snapshot) string {
	f, ok := s.fams["atr_build_info"]
	if !ok || len(f.Samples) == 0 {
		return ""
	}
	l := f.Samples[0].Labels
	out := l["go_version"]
	if rev := l["revision"]; rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
	}
	return out
}
