// Command atrview summarizes observability artifacts without leaving the
// terminal: per-stage latency histograms and top stall reasons from a JSONL
// pipeline event trace, validation plus a one-screen digest of a run
// manifest, and inspection of sweep journals and grid manifests.
//
// Usage:
//
//	atrview -trace out.jsonl
//	atrview -manifest run.json
//	atrview -journal sweep.jsonl
//	atrview -sweep grid.json      (also accepts -perf telemetry manifests)
//	atrview -spans spans.jsonl    (a server job's lifecycle span log)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"atr/internal/obs"
	"atr/internal/stats"
	"atr/internal/sweep"
	"atr/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "summarize a JSONL pipeline event trace")
	manifestPath := flag.String("manifest", "", "validate and summarize a run manifest")
	journalPath := flag.String("journal", "", "summarize a sweep journal (resume state, failures)")
	sweepPath := flag.String("sweep", "", "validate and summarize a sweep grid manifest")
	spansPath := flag.String("spans", "", "summarize a server job's lifecycle span log")
	flag.Parse()

	if *tracePath == "" && *manifestPath == "" && *journalPath == "" && *sweepPath == "" && *spansPath == "" {
		fmt.Fprintln(os.Stderr, "usage: atrview -trace out.jsonl | -manifest run.json | -journal sweep.jsonl | -sweep grid.json | -spans spans.jsonl")
		os.Exit(2)
	}
	if *tracePath != "" {
		summarizeTrace(*tracePath)
	}
	if *manifestPath != "" {
		summarizeManifest(*manifestPath)
	}
	if *journalPath != "" {
		summarizeJournal(*journalPath)
	}
	if *sweepPath != "" {
		summarizeSweep(*sweepPath)
	}
	if *spansPath != "" {
		summarizeSpans(*spansPath)
	}
}

// summarizeSpans renders a job's lifecycle span log: per-name aggregates
// (count, total, mean, max) and a wall-clock timeline of the non-run
// stages, with run spans collapsed into their aggregate row so a thousand
// runs do not scroll a terminal.
func summarizeSpans(path string) {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	spans, dropped, err := telemetry.ReadSpans(f)
	if err != nil {
		die(err)
	}
	if len(spans) == 0 {
		fmt.Printf("spans          %s: empty\n", path)
		return
	}

	type agg struct {
		name  string
		n     int
		total time.Duration
		max   time.Duration
		fails int
	}
	byName := map[string]*agg{}
	order := []string{}
	jobs := map[string]bool{}
	var t0 time.Time
	for _, s := range spans {
		a, ok := byName[s.Name]
		if !ok {
			a = &agg{name: s.Name}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.n++
		a.total += s.Dur()
		if s.Dur() > a.max {
			a.max = s.Dur()
		}
		if s.Err != "" {
			a.fails++
		}
		jobs[s.Job] = true
		if st, err := s.StartTime(); err == nil && (t0.IsZero() || st.Before(t0)) {
			t0 = st
		}
	}

	fmt.Printf("spans          %s: %d spans, %d job(s)\n", path, len(spans), len(jobs))
	if dropped > 0 {
		fmt.Printf("damage         %d unreadable line(s) dropped (torn tail writes are expected after a kill)\n", dropped)
	}
	fmt.Printf("\n%-12s %8s %12s %12s %12s %6s\n", "span", "count", "total", "mean", "max", "fails")
	for _, name := range order {
		a := byName[name]
		fmt.Printf("%-12s %8d %12s %12s %12s %6d\n",
			a.name, a.n, a.total.Round(time.Microsecond),
			(a.total / time.Duration(a.n)).Round(time.Microsecond),
			a.max.Round(time.Microsecond), a.fails)
	}

	fmt.Printf("\ntimeline (offsets from first span):\n")
	for _, s := range spans {
		if s.Name == "run" {
			continue // collapsed into the aggregate table above
		}
		st, err := s.StartTime()
		if err != nil {
			continue
		}
		detail := s.Detail
		if s.Err != "" {
			detail = "ERR " + s.Err
		}
		fmt.Printf("  +%-12s %-12s %-10s %12s  %s\n",
			st.Sub(t0).Round(time.Microsecond), s.Name, s.Job,
			s.Dur().Round(time.Microsecond), detail)
	}
}

// summarizeJournal answers the mid-sweep operator questions: how far did
// the sweep get, what failed, and is the file damaged.
func summarizeJournal(path string) {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	j, err := sweep.LoadJournal(f)
	if err != nil {
		die(err)
	}
	done, failed := 0, 0
	var failures []sweep.Record
	for _, r := range j.Records {
		if r.Err == "" {
			done++
		} else {
			failed++
			failures = append(failures, r)
		}
	}
	fmt.Printf("journal        %s (grid %s, %d instr/run)\n", path, j.Grid, j.Instr)
	fmt.Printf("progress       %d/%d runs journaled (%d ok, %d failed)\n",
		done+failed, j.Total, done, failed)
	if j.Dropped > 0 {
		fmt.Printf("damage         %d unreadable line(s) dropped (torn tail writes are expected after a kill)\n", j.Dropped)
	}
	if rem := j.Total - done; rem > 0 {
		fmt.Printf("resume         %d run(s) still to execute (-resume %s)\n", rem, path)
	} else {
		fmt.Printf("resume         complete; a resumed sweep would re-execute nothing\n")
	}
	sort.Slice(failures, func(i, k int) bool { return failures[i].Seq < failures[k].Seq })
	for _, r := range failures {
		fmt.Printf("  FAIL run %d %s/%s prf=%d after %d attempt(s): %s\n",
			r.Seq, r.Bench, r.Scheme, r.PhysRegs, r.Attempts, r.Err)
	}
}

// summarizeSweep validates a sweep artifact and prints its digest. It
// accepts either a deterministic grid manifest or the scheduling-telemetry
// perf manifest (atr-sweep-perf) that rides alongside it, sniffing the
// schema field to tell them apart.
func summarizeSweep(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		die(fmt.Errorf("%s: %w", path, err))
	}
	if probe.Schema == obs.PerfManifestSchema {
		summarizePerf(path, raw)
		return
	}
	m, err := sweep.DecodeManifest(bytes.NewReader(raw))
	if err != nil {
		die(err)
	}
	g := m.Grid
	fmt.Printf("sweep          %s (schema %s v%d, valid)\n", path, m.Schema, m.Version)
	fmt.Printf("grid           %s: %d profiles x %d RF sizes x %d schemes = %d runs, %d instr/run\n",
		g.Name, len(g.Profiles), len(g.PhysRegs), len(g.Schemes), g.Total, g.Instr)
	fmt.Printf("totals         %d ok, %d failed; %d instructions, %d cycles\n",
		m.Totals.Done, m.Totals.Failed, m.Totals.Committed, m.Totals.Cycles)
	if len(g.SampleModes) > 0 {
		fmt.Printf("sample axis    %s\n", strings.Join(g.SampleModes, ", "))
	}
	sampled := 0
	for _, r := range m.Runs {
		if r.Sample != "" {
			sampled++
		}
	}
	if sampled > 0 {
		fmt.Printf("sampled runs   %d of %d are extrapolated estimates (plan in each run's \"sample\" field)\n",
			sampled, len(m.Runs))
		if sampled < len(m.Runs) {
			fmt.Printf("WARNING        manifest mixes sampled and exact units: compare IPC only within one mode, never across\n")
		}
	}
	for _, r := range m.Runs {
		if r.Err != "" {
			fmt.Printf("  FAIL run %d %s/%s prf=%d after %d attempt(s): %s\n",
				r.Seq, r.Bench, r.Scheme, r.PhysRegs, r.Attempts, r.Err)
		}
	}
}

// summarizePerf digests a scheduling-telemetry manifest: where and when
// the sweep ran (provenance added by the daemon or atrsweep), how it was
// scheduled, and per-shard throughput.
func summarizePerf(path string, raw []byte) {
	pm, err := obs.DecodePerfManifest(bytes.NewReader(raw))
	if err != nil {
		die(err)
	}
	info := pm.Sweep
	fmt.Printf("perf           %s (schema %s v%d, valid)\n", path, pm.Schema, pm.Version)
	fmt.Printf("build          %s %s\n", pm.Build.GoVersion, pm.Build.Revision)
	if info.Host != "" || info.JobID != "" {
		host := info.Host
		if host == "" {
			host = "?"
		}
		if info.JobID != "" {
			fmt.Printf("provenance     host %s, server job %s\n", host, info.JobID)
		} else {
			fmt.Printf("provenance     host %s\n", host)
		}
	}
	if info.StartedAt != "" {
		fmt.Printf("window         %s .. %s\n", info.StartedAt, info.FinishedAt)
	}
	fmt.Printf("sweep          %d/%d done, %d failed, %d retried, %d resumed\n",
		info.Done, info.Total, info.Failed, info.Retried, info.Resumed)
	fmt.Printf("perf           %.2fs wall, %.0f cycles/s, %d journal flushes\n",
		info.WallSeconds, info.CyclesPerSec, info.JournalFlushes)
	if sm := info.Sample; sm != nil {
		fmt.Printf("sampling       %d sampled + %d exact runs (modes: %s)\n",
			sm.SampledRuns, sm.ExactRuns, strings.Join(sm.Modes, ", "))
	}
	if info.Batches > 0 {
		// Lane occupancy: batched runs per group versus the configured cap.
		fmt.Printf("batching       %d groups covering %d runs, %.1f/%d lanes occupied, %.2fs setup, %.2fs exec\n",
			info.Batches, info.BatchedRuns,
			float64(info.BatchedRuns)/float64(info.Batches), info.Batch,
			info.SetupSeconds, info.ExecSeconds)
	}
	for _, s := range info.Shards {
		if s.Runs == 0 {
			continue
		}
		fmt.Printf("  shard %d: %d runs (%d failed), %.2fs busy, %.0f cycles/s\n",
			s.Worker, s.Runs, s.Failed, s.BusySeconds, s.CyclesPerSec)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "atrview:", err)
	os.Exit(1)
}

// stageGap names one per-uop latency component of the pipeline walk.
type stageGap struct {
	name string
	hist *stats.Histogram
}

const histMax = 2048 // cycles; longer gaps land in the overflow bucket

func summarizeTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()

	gaps := []*stageGap{
		{name: "fetch->rename", hist: stats.NewHistogram(histMax)},
		{name: "rename->issue", hist: stats.NewHistogram(histMax)},
		{name: "issue->complete", hist: stats.NewHistogram(histMax)},
		{name: "complete->commit", hist: stats.NewHistogram(histMax)},
	}
	var committed, squashed uint64
	stalls := make(map[string]uint64) // dominant gap per committed uop
	byScheme := make(map[string]uint64)
	byRegion := make(map[string]uint64)
	var releases uint64

	err = obs.ReadTrace(f,
		func(ev obs.UopEvent) {
			if ev.Squashed {
				squashed++
				return
			}
			committed++
			deltas := [4]uint64{
				ev.Rename - ev.Fetch,
				ev.Issue - ev.Rename,
				ev.Complete - ev.Issue,
				ev.Commit - ev.Complete,
			}
			dominant, worst := 0, uint64(0)
			for i, d := range deltas {
				gaps[i].hist.Add(int(d))
				if d > worst {
					dominant, worst = i, d
				}
			}
			stalls[gaps[dominant].name]++
		},
		func(ev obs.ReleaseEvent) {
			releases++
			byScheme[ev.Scheme]++
			byRegion[ev.Region]++
		})
	if err != nil {
		die(err)
	}

	fmt.Printf("trace          %s\n", path)
	fmt.Printf("uops           %d committed, %d squashed (%.1f%% wrong-path)\n",
		committed, squashed, pct(squashed, committed+squashed))
	fmt.Printf("\nstage latencies (cycles):\n")
	fmt.Printf("%-18s %10s %8s %6s %6s %6s %8s\n", "stage", "count", "mean", "p50", "p90", "p99", "max-seen")
	for _, g := range gaps {
		h := g.hist
		fmt.Printf("%-18s %10d %8.1f %6d %6d %6d %8d\n",
			g.name, h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.9),
			h.Percentile(0.99), h.Percentile(1))
	}
	fmt.Printf("\ntop stall reasons (dominant per-uop gap):\n")
	for _, kv := range sortedDesc(stalls) {
		fmt.Printf("  %-18s %10d uops (%.1f%%)\n", kv.k, kv.v, pct(kv.v, committed))
	}
	if releases > 0 {
		fmt.Printf("\nregister releases: %d\n", releases)
		fmt.Printf("  by scheme:")
		for _, kv := range sortedDesc(byScheme) {
			fmt.Printf("  %s %d", kv.k, kv.v)
		}
		fmt.Printf("\n  by region:")
		for _, kv := range sortedDesc(byRegion) {
			fmt.Printf("  %s %d", kv.k, kv.v)
		}
		fmt.Println()
	}
}

func summarizeManifest(path string) {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	m, err := obs.DecodeManifest(f)
	if err != nil {
		die(err)
	}
	fmt.Printf("manifest       %s (schema %s v%d, valid)\n", path, m.Schema, m.Version)
	fmt.Printf("build          %s %s\n", m.Build.GoVersion, m.Build.Revision)
	fmt.Printf("benchmark      %s (%s), seed %d\n", m.Benchmark.Name, m.Benchmark.Class, m.Benchmark.Seed)
	fmt.Printf("machine        scheme %v, %d regs/class, ROB %d\n",
		m.Config.Scheme, m.Config.PhysRegs, m.Config.ROBSize)
	fmt.Printf("result         %d instructions, %d cycles, IPC %.3f\n",
		m.Result.Committed, m.Result.Cycles, m.Result.IPC)
	if sm := m.Sample; sm != nil {
		fmt.Printf("sampled        %s: %d windows, %d detailed, %d fast-forwarded instructions\n",
			sm.Mode, sm.Windows, sm.DetailInstr, sm.FFInstr)
		fmt.Printf("error bars     IPC ±%.2f%%, mispredict ±%.2f%%, branch acc ±%.2f%%, L1D hit ±%.2f%% (95%% CI)\n",
			100*sm.IPCRelErr, 100*sm.MispredictRelErr, 100*sm.BranchAccRelErr, 100*sm.L1DHitRelErr)
	}
	fmt.Printf("lifecycle      in-use %.1f%%, unused %.1f%%, verified-unused %.1f%%\n",
		100*m.Ledger.InUse, 100*m.Ledger.Unused, 100*m.Ledger.VerifiedUnused)
	fmt.Printf("atomic ratio   %.1f%%\n", 100*m.Ledger.Atomic)
	fmt.Printf("perf           %.2fs wall, %.0f instr/s\n", m.Perf.WallSeconds, m.Perf.InstrPerSec)
	if m.Perf.Lanes > 1 {
		fmt.Printf("lanes          %d lockstep, %.2fs setup, %.2fs exec\n",
			m.Perf.Lanes, m.Perf.SetupSeconds, m.Perf.ExecSeconds)
	}
	if len(m.Samples) > 0 {
		fmt.Printf("samples        %d intervals\n", len(m.Samples))
	}
	if m.Trace != nil {
		fmt.Printf("trace          %d uops (%d committed), %d releases\n",
			m.Trace.Uops, m.Trace.Commits, m.Trace.Releases)
	}
}

type kv struct {
	k string
	v uint64
}

func sortedDesc(m map[string]uint64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].k < out[j].k
	})
	return out
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
