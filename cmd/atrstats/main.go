// Command atrstats runs the paper's analysis-section experiments: the
// register lifetime state split (Fig 4), the atomic region ratios (Fig 6),
// the consumer count distribution (Fig 12), and the event-gap analysis
// (Fig 14). It also cross-validates the simulator's region classification
// against the independent trace-based analyzer.
//
// Usage:
//
//	atrstats [-n instructions] [-fig 4|6|12|14|xcheck] [-json results.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atr/internal/config"
	"atr/internal/experiments"
	"atr/internal/isa"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/trace"
	"atr/internal/workload"
)

func main() {
	n := flag.Uint64("n", 40_000, "instructions per simulation")
	fig := flag.String("fig", "all", "4, 6, 12, 14, xcheck, or all")
	jsonPath := flag.String("json", "", "write results to this file as JSON")
	flag.Parse()

	r := experiments.NewRunner(*n)
	w := os.Stdout
	results := make(map[string]any)
	switch *fig {
	case "4":
		results["fig4"] = experiments.Fig4(r, w)
	case "6":
		results["fig6"] = experiments.Fig6(r, w)
	case "12":
		results["fig12"] = experiments.Fig12(r, w)
	case "14":
		results["fig14"] = experiments.Fig14(r, w)
	case "xcheck":
		results["xcheck"] = crossCheck(int(*n), w)
	case "all":
		results["fig4"] = experiments.Fig4(r, w)
		results["fig6"] = experiments.Fig6(r, w)
		results["fig12"] = experiments.Fig12(r, w)
		results["fig14"] = experiments.Fig14(r, w)
		results["xcheck"] = crossCheck(int(*n), w)
	default:
		fmt.Fprintf(os.Stderr, "atrstats: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if *jsonPath != "" {
		out := map[string]any{
			"schema":  "atr-stats-manifest",
			"version": 1,
			"build":   obs.Build(),
			"instr":   *n,
			"results": results,
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrstats:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "atrstats:", err)
			os.Exit(1)
		}
	}
}

// CrossRow is one benchmark's pipeline-vs-trace atomic ratio comparison.
type CrossRow struct {
	Bench    string  `json:"bench"`
	Pipeline float64 `json:"pipeline"`
	Trace    float64 `json:"trace"`
	Delta    float64 `json:"delta"`
}

// crossCheck compares the timing simulator's atomic region ratio (which
// observes the speculative stream) with the trace analyzer's (which observes
// only the committed path). The two are independent implementations of the
// region semantics; they should agree closely.
func crossCheck(n int, w *os.File) []CrossRow {
	fmt.Fprintf(w, "Cross-check: pipeline ledger vs trace analyzer (atomic ratio, GPR)\n")
	fmt.Fprintf(w, "%-12s %10s %10s %8s\n", "bench", "pipeline", "trace", "delta")
	var rows []CrossRow
	for _, p := range workload.Profiles() {
		prog := p.Generate()
		cpu := pipeline.New(config.GoldenCove(), prog)
		cpu.Run(uint64(n))
		_, _, pipeAtomic := cpu.Engine.Ledger.RegionFractions()
		tr := trace.AnalyzeProgram(prog, isa.ClassGPR, n)
		fmt.Fprintf(w, "%-12s %9.1f%% %9.1f%% %7.1f%%\n",
			p.Name, 100*pipeAtomic, 100*tr.Atomic, 100*(pipeAtomic-tr.Atomic))
		rows = append(rows, CrossRow{
			Bench: p.Name, Pipeline: pipeAtomic, Trace: tr.Atomic,
			Delta: pipeAtomic - tr.Atomic,
		})
	}
	return rows
}
