package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryOn429HonorsRetryAfter drives the transport against a server
// that answers 429 twice before succeeding: the client must retry exactly
// through the budget, sleep at least the advertised Retry-After, and hand
// the caller the eventual 200.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := &client{base: ts.URL, http: &http.Client{}, retries: 3, retryBackoff: time.Millisecond}
	resp, err := c.doGet("/v1/jobs", "")
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 429s then success)", got)
	}
}

// TestRetryBudgetExhaustedReturns429 checks a persistent 429 is returned
// to the caller (so apiErr can render the server's message) rather than
// being swallowed, and that the attempt count is retries+1.
func TestRetryBudgetExhaustedReturns429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &client{base: ts.URL, http: &http.Client{}, retries: 2, retryBackoff: time.Millisecond}
	resp, err := c.doGet("/v1/jobs", "")
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429 surfaced", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetryOnConnectionRefused proves the transient classifier treats a
// refused connection as retryable: the daemon's port opens between the
// first attempt and the retry, and the request ultimately succeeds.
func TestRetryOnConnectionRefused(t *testing.T) {
	// Reserve a port, then close it so the first attempt is refused.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	probe, err := http.Get("http://" + addr + "/")
	if err == nil {
		probe.Body.Close()
		t.Skip("reserved port answered; cannot stage a refused connection")
	}
	if !transient(err) {
		t.Fatalf("connection-refused error not classified transient: %v", err)
	}

	// Bring the server up concurrently with the client's retry loop.
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go func() {
		time.Sleep(50 * time.Millisecond)
		lis2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		srv.Serve(lis2)
	}()
	defer srv.Close()

	c := &client{base: "http://" + addr, http: &http.Client{}, retries: 5, retryBackoff: 50 * time.Millisecond}
	resp, err := c.doGet("/healthz", "")
	if err != nil {
		t.Fatalf("request never recovered across daemon start: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
}

// TestTransientClassification pins down what the retry loop must NOT
// retry: plain HTTP errors arrive as responses (nil error), and a nil
// error is never transient.
func TestTransientClassification(t *testing.T) {
	if transient(nil) {
		t.Fatal("nil error classified transient")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := &client{base: ts.URL, http: &http.Client{}, retries: 3, retryBackoff: time.Millisecond}
	resp, err := c.doGet("/", "")
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 passed through without retry", resp.StatusCode)
	}
}
