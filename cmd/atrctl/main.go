// Command atrctl is the atrd client: submit simulation and sweep jobs,
// watch their streamed progress, fetch manifests and telemetry, and cancel.
//
//	atrctl [-server http://localhost:8437] <command> [flags] [args]
//
//	submit   -grid fig10|full|micro | -bench gcc [-scheme atr] [-regs N]
//	         | -spec grid.json      [-n instr] [-watch] [-ephemeral] [-q]
//	watch    <job>          stream progress until the job finishes
//	wait     <job>          block (quietly) until the job finishes
//	status   <job>          one-shot status
//	manifest [-o file] <job>  fetch the deterministic result manifest
//	perf     [-o file] <job>  fetch scheduling telemetry (provenance)
//	cancel   <job>
//	list
//	health
//	metrics  [-prom]        daemon counters (JSON; -prom: Prometheus text)
//	workers                 coordinator fleet view (cluster mode)
//	quota    [tenant max]   show per-tenant quotas, or set one (0 removes)
//
// Requests that fail transiently — connection refused or reset while a
// daemon restarts, or 429 backpressure — are retried with doubling
// backoff, honoring Retry-After, bounded by -retries/-retry-backoff.
//
// Exit status: 0 success (watch/wait: job done), 1 operational error or
// job failure, 2 usage error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

type client struct {
	base         string
	http         *http.Client
	retries      int
	retryBackoff time.Duration
}

func main() {
	global := flag.NewFlagSet("atrctl", flag.ExitOnError)
	server := global.String("server", envOr("ATRD_SERVER", "http://localhost:8437"), "atrd base URL")
	retries := global.Int("retries", 3, "retries for transient failures (refused/reset connections, 429)")
	retryBackoff := global.Duration("retry-backoff", 500*time.Millisecond, "first-retry backoff (doubles per retry; 429 honors Retry-After)")
	global.Usage = usage
	_ = global.Parse(os.Args[1:])
	args := global.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{
		base:         strings.TrimRight(*server, "/"),
		http:         &http.Client{},
		retries:      *retries,
		retryBackoff: *retryBackoff,
	}

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(rest)
	case "watch":
		err = c.watch(rest)
	case "wait":
		err = c.wait(rest)
	case "status":
		err = c.oneJob(rest, "")
	case "manifest":
		err = c.fetch(rest, "manifest")
	case "perf":
		err = c.fetch(rest, "perf")
	case "cancel":
		err = c.cancel(rest)
	case "list":
		err = c.list()
	case "health":
		err = c.get("/healthz", os.Stdout)
	case "metrics":
		err = c.metrics(rest)
	case "workers":
		err = c.workers()
	case "quota":
		err = c.quota(rest)
	default:
		fmt.Fprintf(os.Stderr, "atrctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: atrctl [-server URL] [-retries N] [-retry-backoff d] <command> [flags] [args]
commands: submit watch wait status manifest perf cancel list health metrics workers quota`)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// apiErr extracts the server's JSON error message from a non-2xx reply.
func apiErr(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
		State string `json:"state"`
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		if e.State != "" {
			return fmt.Errorf("%s: %s (job state %s)", resp.Status, e.Error, e.State)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("%s: %s (Retry-After %ss)", resp.Status, e.Error, resp.Header.Get("Retry-After"))
		}
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
}

// transient reports whether a request error is worth retrying: the
// connection shapes a restarting or briefly overloaded daemon produces.
// Everything else (DNS failures, TLS errors, timeouts from hung streams)
// surfaces immediately.
func transient(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// retryWait picks the sleep before the next attempt: the server's
// Retry-After (whole seconds) when a 429 carries one, the doubling
// backoff otherwise.
func retryWait(resp *http.Response, backoff time.Duration) time.Duration {
	if resp != nil {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return backoff
}

// do executes build()'s request, retrying transient failures — refused or
// reset connections while a daemon restarts, and 429 backpressure — with
// doubling backoff, honoring Retry-After. Bounded by -retries; the final
// attempt's outcome (response or error) goes to the caller unchanged, so
// a persistent 429 still renders through apiErr with its server message.
func (c *client) do(build func() (*http.Request, error)) (*http.Response, error) {
	backoff := c.retryBackoff
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err == nil && resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		if err != nil && !transient(err) {
			return nil, err
		}
		if attempt >= c.retries {
			return resp, err
		}
		wait := retryWait(resp, backoff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atrctl: %v; retrying in %s (%d/%d)\n", err, wait, attempt+1, c.retries)
		} else {
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "atrctl: %s; retrying in %s (%d/%d)\n", resp.Status, wait, attempt+1, c.retries)
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

func (c *client) doGet(path, accept string) (*http.Response, error) {
	return c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
		if err == nil && accept != "" {
			req.Header.Set("Accept", accept)
		}
		return req, err
	})
}

func (c *client) get(path string, w io.Writer) error {
	return c.getAccept(path, "", w)
}

// getAccept is get with an Accept header — /metrics negotiates between
// Prometheus text (its default) and the JSON ServerInfo view.
func (c *client) getAccept(path, accept string, w io.Writer) error {
	resp, err := c.doGet(path, accept)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}

// metrics fetches the daemon counters: the JSON view by default (the
// established atrctl output), the Prometheus text exposition with -prom.
func (c *client) metrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	prom := fs.Bool("prom", false, "print the Prometheus text exposition instead of JSON")
	_ = fs.Parse(args)
	if *prom {
		return c.get("/metrics", os.Stdout)
	}
	return c.getAccept("/metrics", "application/json", os.Stdout)
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	grid := fs.String("grid", "", "grid preset (fig10, full, micro)")
	bench := fs.String("bench", "", "single run: benchmark profile name")
	scheme := fs.String("scheme", "", "single run: release scheme")
	regs := fs.Int("regs", 0, "single run: physical registers per class (0: base config)")
	specPath := fs.String("spec", "", "submit this JSON job spec file verbatim")
	instr := fs.Uint64("n", 0, "instructions per run (0: daemon default)")
	watch := fs.Bool("watch", false, "stream progress until the job finishes")
	ephemeral := fs.Bool("ephemeral", false, "cancel the job if this client disconnects (implies -watch)")
	quiet := fs.Bool("q", false, "print only the job ID")
	_ = fs.Parse(args)

	var spec map[string]any
	switch {
	case *specPath != "":
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("%s: %w", *specPath, err)
		}
	case *grid != "":
		spec = map[string]any{"kind": "grid", "grid": *grid}
	case *bench != "":
		spec = map[string]any{"kind": "run", "bench": *bench}
		if *scheme != "" {
			spec["scheme"] = *scheme
		}
		if *regs != 0 {
			spec["regs"] = *regs
		}
	default:
		return fmt.Errorf("submit needs -grid, -bench, or -spec")
	}
	if *instr != 0 {
		spec["instr"] = *instr
	}
	if *ephemeral {
		spec["ephemeral"] = true
		*watch = true
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}

	url := c.base + "/v1/jobs"
	if *watch {
		url += "?watch=1"
	}
	resp, err := c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, err
	})
	if err != nil {
		return err
	}
	if *watch {
		if resp.StatusCode != http.StatusOK {
			return apiErr(resp)
		}
		return streamEvents(resp, *quiet)
	}
	if resp.StatusCode != http.StatusAccepted {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if *quiet {
		fmt.Println(st.ID)
	} else {
		fmt.Printf("%s %s (grid %s, %d runs)\n", st.ID, st.State, st.Grid, st.Total)
	}
	return nil
}

type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Grid     string `json:"grid"`
	Total    int    `json:"total"`
	Error    string `json:"error"`
	Progress struct {
		Done    int    `json:"Done"`
		Failed  int    `json:"Failed"`
		Resumed int    `json:"Resumed"`
		Total   int    `json:"Total"`
		Bench   string `json:"Bench"`
		Scheme  string `json:"Scheme"`
	} `json:"progress"`
}

type event struct {
	Type     string `json:"type"`
	Job      string `json:"job"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress *struct {
		Done    int    `json:"Done"`
		Failed  int    `json:"Failed"`
		Resumed int    `json:"Resumed"`
		Total   int    `json:"Total"`
		Bench   string `json:"Bench"`
		Scheme  string `json:"Scheme"`
		Worker  int    `json:"Worker"`
		Err     string `json:"Err"`
	} `json:"progress"`
}

// streamEvents consumes an NDJSON event stream, rendering progress to
// stderr and returning an error unless the job ends done.
func streamEvents(resp *http.Response, quiet bool) error {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	final := ""
	finalErr := ""
	printedID := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if ev.Job != "" && !printedID {
			if quiet {
				fmt.Println(ev.Job)
			}
			printedID = true
		}
		switch ev.Type {
		case "progress":
			if p := ev.Progress; p != nil && !quiet {
				stat := "ok"
				if p.Err != "" {
					stat = "FAIL " + p.Err
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s (worker %d): %s\n",
					p.Done+p.Failed, p.Total, p.Bench, p.Scheme, p.Worker, stat)
			}
		case "status":
			final = ev.State
			finalErr = ev.Error
			if !quiet {
				fmt.Fprintf(os.Stderr, "job %s: %s %s\n", ev.Job, ev.State, ev.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if final != "done" {
		return fmt.Errorf("job ended %s %s", final, finalErr)
	}
	return nil
}

func (c *client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: atrctl watch <job>")
	}
	resp, err := c.doGet("/v1/jobs/"+args[0]+"/events", "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	return streamEvents(resp, false)
}

// wait polls until the job reaches a terminal state.
func (c *client) wait(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: atrctl wait <job>")
	}
	for {
		st, err := c.status(args[0])
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "cancelled", "interrupted":
			return fmt.Errorf("job %s ended %s %s", st.ID, st.State, st.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func (c *client) status(id string) (status, error) {
	var st status
	resp, err := c.doGet("/v1/jobs/"+id, "")
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiErr(resp)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (c *client) oneJob(args []string, _ string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: atrctl status <job>")
	}
	return c.get("/v1/jobs/"+args[0], os.Stdout)
}

func (c *client) fetch(args []string, what string) error {
	fs := flag.NewFlagSet(what, flag.ExitOnError)
	out := fs.String("o", "", "write to this file instead of stdout")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: atrctl %s [-o file] <job>", what)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.get("/v1/jobs/"+fs.Arg(0)+"/"+what, w)
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: atrctl cancel <job>")
	}
	resp, err := c.do(func() (*http.Request, error) {
		return http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+args[0], nil)
	})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) list() error {
	resp, err := c.doGet("/v1/jobs", "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	var jobs []status
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return err
	}
	for _, j := range jobs {
		fmt.Printf("%-10s %-12s grid=%-8s %d/%d done", j.ID, j.State, j.Grid, j.Progress.Done, j.Total)
		if j.Error != "" {
			fmt.Printf("  (%s)", j.Error)
		}
		fmt.Println()
	}
	return nil
}

// workers renders the coordinator's fleet view. The decode struct mirrors
// obs.ClusterInfo — atrctl stays free of internal imports by design.
func (c *client) workers() error {
	resp, err := c.doGet("/cluster/v1/workers", "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	var info struct {
		Workers []struct {
			ID              string  `json:"id"`
			Addr            string  `json:"addr"`
			SimWorkers      int     `json:"sim_workers"`
			AliveSeconds    float64 `json:"alive_seconds"`
			LastBeatSeconds float64 `json:"last_beat_seconds"`
			Leased          int     `json:"leased"`
			Done            uint64  `json:"done"`
			Failed          uint64  `json:"failed"`
		} `json:"workers"`
		JobsActive   int `json:"jobs_active"`
		UnitsDone    int `json:"units_done"`
		UnitsLeased  int `json:"units_leased"`
		UnitsPending int `json:"units_pending"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	fmt.Printf("%d workers; %d active jobs; units %d done / %d leased / %d pending\n",
		len(info.Workers), info.JobsActive, info.UnitsDone, info.UnitsLeased, info.UnitsPending)
	if len(info.Workers) == 0 {
		return nil
	}
	fmt.Printf("%-16s %-20s %4s %8s %9s %7s %8s %7s\n",
		"NAME", "ADDR", "SIM", "ALIVE", "LAST-BEAT", "LEASED", "DONE", "FAILED")
	for _, w := range info.Workers {
		fmt.Printf("%-16s %-20s %4d %7.0fs %8.1fs %7d %8d %7d\n",
			w.ID, w.Addr, w.SimWorkers, w.AliveSeconds, w.LastBeatSeconds, w.Leased, w.Done, w.Failed)
	}
	return nil
}

// quota with no args shows the coordinator's per-tenant quota table;
// `quota <tenant> <max>` sets an override (max 0 removes it).
func (c *client) quota(args []string) error {
	switch len(args) {
	case 0:
		return c.showQuotas(nil)
	case 2:
		max, err := strconv.Atoi(args[1])
		if err != nil || max < 0 {
			return fmt.Errorf("quota: max-active must be a non-negative integer, got %q", args[1])
		}
		body, _ := json.Marshal(map[string]any{"tenant": args[0], "max_active": max})
		resp, err := c.do(func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut, c.base+"/cluster/v1/quotas", bytes.NewReader(body))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
			}
			return req, err
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return apiErr(resp)
		}
		return c.showQuotas(resp)
	default:
		return fmt.Errorf("usage: atrctl quota [tenant max-active]")
	}
}

// showQuotas renders a quota view, fetching it when resp is nil.
func (c *client) showQuotas(resp *http.Response) error {
	if resp == nil {
		var err error
		resp, err = c.doGet("/cluster/v1/quotas", "")
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return apiErr(resp)
		}
	}
	defer resp.Body.Close()
	var v struct {
		DefaultMaxActive int            `json:"default_max_active"`
		Tenants          map[string]int `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	if v.DefaultMaxActive == 0 {
		fmt.Println("default: unlimited")
	} else {
		fmt.Printf("default: %d active jobs\n", v.DefaultMaxActive)
	}
	tenants := make([]string, 0, len(v.Tenants))
	for tenant := range v.Tenants {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		fmt.Printf("%-24s %d\n", tenant, v.Tenants[tenant])
	}
	return nil
}
