package main

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildAtrsim compiles the atrsim binary into t's temp dir once per test.
func buildAtrsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "atrsim")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSampleModeFlagConflicts covers the usage-error contract: -sample-mode
// combined with -batch > 1 (or with any per-CPU observer flag, or malformed)
// must exit 2 with a diagnostic on stderr, before any simulation starts.
func TestSampleModeFlagConflicts(t *testing.T) {
	bin := buildAtrsim(t)
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{
			name: "batch",
			args: []string{"-sample-mode", "systematic:10000/2000/500", "-batch", "2"},
			want: "-sample-mode is incompatible with -batch",
		},
		{
			name: "trace",
			args: []string{"-sample-mode", "systematic:10000/2000/500", "-trace", "out.jsonl"},
			want: "-sample-mode is incompatible with -trace",
		},
		{
			name: "o3view",
			args: []string{"-sample-mode", "systematic:10000/2000/500", "-o3view", "out.o3"},
			want: "-sample-mode is incompatible with",
		},
		{
			name: "sampler",
			args: []string{"-sample-mode", "systematic:10000/2000/500", "-sample", "100"},
			want: "-sample-mode is incompatible with",
		},
		{
			name: "malformed",
			args: []string{"-sample-mode", "systematic:10/20"},
			want: "sample",
		},
		{
			name: "litmus",
			args: []string{"-bench", "litmus-sb#0", "-sample-mode", "systematic:10000/2000/500"},
			want: "-sample-mode is incompatible with litmus",
		},
		{
			name: "zero-window",
			args: []string{"-sample-mode", "systematic:10000/0/500"},
			want: "window",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-bench", "gcc", "-n", "1000"}, tc.args...)
			cmd := exec.Command(bin, args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("atrsim %v: err = %v, want exit error", tc.args, err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("atrsim %v: exit code %d, want 2\nstderr: %s", tc.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("atrsim %v: stderr %q does not mention %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

// TestSampleModeRuns smoke-tests the sampled execution path end to end: a
// short sampled run must succeed and report the sampling provenance.
func TestSampleModeRuns(t *testing.T) {
	bin := buildAtrsim(t)
	cmd := exec.Command(bin, "-bench", "gcc", "-n", "50000", "-sample-mode", "systematic:10000/2000/500")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sampled run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"sampled", "systematic:10000/2000/500", "error bars"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLitmusProfileRuns smoke-tests a litmus profile end to end through the
// CLI: an exact run of a memory-ordering probe must succeed and report the
// litmus class in the benchmark line.
func TestLitmusProfileRuns(t *testing.T) {
	bin := buildAtrsim(t)
	cmd := exec.Command(bin, "-bench", "litmus-sb#0", "-n", "1000")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("litmus run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"litmus-sb#0", "(litmus)", "committed"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestListIncludesLitmus verifies -list advertises the litmus family next to
// the benchmark profiles, so the probes are discoverable from the CLI.
func TestListIncludesLitmus(t *testing.T) {
	bin := buildAtrsim(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list failed: %v\n%s", err, out)
	}
	for _, want := range []string{"gcc", "litmus-sb#0", "litmus-mp#0", "litmus"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}
