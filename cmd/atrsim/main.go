// Command atrsim runs a single simulation of one benchmark profile under a
// chosen release scheme and prints the run summary, release accounting, and
// register lifetime statistics. With the observability flags it also emits
// a per-uop pipeline event trace (JSONL and/or Konata-loadable O3PipeView),
// an interval time series, and a machine-readable run manifest.
//
// Usage:
//
//	atrsim [-bench name] [-scheme baseline|nonspec-er|atomic|combined]
//	       [-regs N] [-n instructions] [-delay N] [-walk] [-sched event|scan] [-v]
//	       [-batch K] [-trace out.jsonl] [-o3view out.o3] [-json run.json]
//	       [-sample N] [-samples out.csv|out.json]
//	       [-sample-mode systematic:P/W/U]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -batch K simulates K identical lockstep lanes of the same configuration
// on the batched executor and verifies lane isolation: every lane must
// finish bit-identical to lane 0 (and pass the engine invariants), or the
// run fails. The manifest's perf block then records the lane count and
// the setup/exec phase split. K < 1 is a usage error (exit 2).
//
// -sample-mode systematic:<period>/<window>/<warmup> switches to sampled
// execution: the functional emulator fast-forwards between systematically
// spaced windows (keeping predictor and cache state warm), the detailed
// pipeline runs only inside the windows, and every reported statistic is an
// extrapolated estimate with 95% confidence error bars. Sampled execution
// is incompatible with -batch > 1, with the per-CPU observers
// (-trace/-o3view/-sample/-samples), and with litmus profiles (whose single
// architected outcome cannot be extrapolated); combining them is a usage
// error (exit 2).
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"atr/internal/batch"
	"atr/internal/checkpoint"
	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/workload"
)

func main() {
	bench := flag.String("bench", "omnetpp", "benchmark profile name (see -list)")
	schemeName := flag.String("scheme", "atomic", "release scheme: baseline, nonspec-er, atomic, combined")
	regs := flag.Int("regs", 64, "physical registers per class (0 = infinite)")
	n := flag.Uint64("n", 100_000, "instructions to simulate")
	delay := flag.Int("delay", 0, "ATR redefine-signal pipeline delay (Fig 13)")
	walk := flag.Bool("walk", false, "use walk-based SRT recovery instead of checkpoints")
	schedName := flag.String("sched", "event", "scheduler implementation: event (wakeup lists + completion wheel) or scan (reference)")
	batchK := flag.Int("batch", 1, "simulate K identical lockstep lanes and verify lane isolation (1 = solo)")
	list := flag.Bool("list", false, "list benchmark profiles and exit")
	verbose := flag.Bool("v", false, "print internal release counters")
	tracePath := flag.String("trace", "", "write a JSONL pipeline event trace to this file")
	o3Path := flag.String("o3view", "", "write a gem5 O3PipeView trace (Konata-loadable) to this file")
	jsonPath := flag.String("json", "", "write a machine-readable run manifest to this file")
	sample := flag.Uint64("sample", 0, "interval sampler period in cycles (0 disables)")
	sampleMode := flag.String("sample-mode", "", "sampled execution plan: systematic:<period>/<window>/<warmup> (empty = exact)")
	samplesPath := flag.String("samples", "", "write the interval time series to this file (.csv or .json)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		for _, p := range workload.LitmusProfiles() {
			fmt.Printf("%-28s %s\n", p.Name, p.Class)
		}
		return
	}
	if *n == 0 {
		fmt.Fprintln(os.Stderr, "atrsim: -n must be positive (0 would simulate nothing)")
		os.Exit(2)
	}
	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "atrsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	scheme, err := config.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrsim:", err)
		os.Exit(2)
	}
	cfg := config.GoldenCove().WithScheme(scheme).WithPhysRegs(*regs)
	cfg.RedefineDelay = *delay
	cfg.WalkRecovery = *walk
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim:", err)
		os.Exit(2)
	}
	if *samplesPath != "" && *sample == 0 {
		*sample = 1000 // -samples implies sampling at a default period
	}
	if *batchK < 1 {
		fmt.Fprintf(os.Stderr, "atrsim: -batch must be >= 1 (got %d)\n", *batchK)
		os.Exit(2)
	}
	if *batchK > 1 && (*tracePath != "" || *o3Path != "" || *sample > 0) {
		fmt.Fprintln(os.Stderr, "atrsim: -batch > 1 is incompatible with -trace/-o3view/-sample (observers are per-CPU; the batched executor does not attach them)")
		os.Exit(2)
	}
	var plan checkpoint.Plan
	sampledRun := *sampleMode != ""
	if sampledRun {
		var err error
		plan, err = checkpoint.ParseMode(*sampleMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsim:", err)
			os.Exit(2)
		}
		if *batchK > 1 {
			fmt.Fprintln(os.Stderr, "atrsim: -sample-mode is incompatible with -batch > 1 (sampled execution estimates one run from detail windows; lockstep lanes require exact full-detail simulation — run them separately)")
			os.Exit(2)
		}
		if *tracePath != "" || *o3Path != "" || *sample > 0 {
			fmt.Fprintln(os.Stderr, "atrsim: -sample-mode is incompatible with -trace/-o3view/-sample (observers watch a single detailed pipeline; a sampled run has many short-lived ones)")
			os.Exit(2)
		}
		if p.Litmus != "" {
			fmt.Fprintln(os.Stderr, "atrsim: -sample-mode is incompatible with litmus profiles (a litmus probe checks one architected outcome against the memory-model oracle; extrapolating statistics from sampled windows is meaningless for it)")
			os.Exit(2)
		}
	}

	var observer obs.Observer
	var closers []func() error
	if *tracePath != "" || *o3Path != "" {
		var jsonlW, o3W *os.File
		if *tracePath != "" {
			jsonlW = mustCreate(*tracePath)
			closers = append(closers, jsonlW.Close)
		}
		if *o3Path != "" {
			o3W = mustCreate(*o3Path)
			closers = append(closers, o3W.Close)
		}
		// *os.File nil-interface footgun: pass through an io.Writer-typed
		// nil only when the file was actually opened.
		switch {
		case jsonlW != nil && o3W != nil:
			observer.Tracer = obs.NewTracer(jsonlW, o3W)
		case jsonlW != nil:
			observer.Tracer = obs.NewTracer(jsonlW, nil)
		default:
			observer.Tracer = obs.NewTracer(nil, o3W)
		}
	}
	if *sample > 0 {
		observer.Sampler = obs.NewSampler(*sample)
	}

	var sched pipeline.SchedulerKind
	switch *schedName {
	case "event":
		sched = pipeline.SchedulerEvent
	case "scan":
		sched = pipeline.SchedulerScan
	default:
		fmt.Fprintf(os.Stderr, "atrsim: unknown scheduler %q (want event or scan)\n", *schedName)
		os.Exit(2)
	}

	prog := p.Generate()
	// Profile only the simulation itself, not program generation or
	// report/manifest writing, so hot-path work stands out.
	if *cpuProfile != "" {
		f := mustCreate(*cpuProfile)
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "atrsim: cpuprofile:", err)
			os.Exit(1)
		}
	}
	var (
		cpu   *pipeline.CPU
		res   pipeline.Result
		bperf batch.Perf
		est   checkpoint.Estimate
	)
	start := time.Now()
	if sampledRun {
		est = checkpoint.Run(cfg, prog, sched, *n, plan)
		res = est.Result
	} else if *batchK > 1 {
		cfgs := make([]config.Config, *batchK)
		for i := range cfgs {
			cfgs[i] = cfg
		}
		lanes, perf := batch.Run(prog, cfgs, *n, batch.Options{Kind: sched})
		bperf = perf
		cpu, res = lanes[0].CPU, lanes[0].Result
		for i, l := range lanes {
			if err := l.CPU.Engine.CheckInvariants(); err != nil {
				fmt.Fprintf(os.Stderr, "atrsim: INVARIANT VIOLATION (lane %d): %v\n", i, err)
				os.Exit(1)
			}
			if !reflect.DeepEqual(l.Result, res) {
				fmt.Fprintf(os.Stderr, "atrsim: LANE ISOLATION VIOLATION: lane %d diverges from lane 0\n", i)
				os.Exit(1)
			}
		}
	} else {
		cpu = pipeline.NewWithScheduler(cfg, prog, sched)
		if observer.Enabled() {
			cpu.Observe(&observer)
		}
		res = cpu.Run(*n)
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		writeHeapProfile(*memProfile)
	}

	if observer.Tracer != nil {
		if err := observer.Tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "atrsim: trace:", err)
			os.Exit(1)
		}
	}
	for _, c := range closers {
		if err := c(); err != nil {
			fmt.Fprintln(os.Stderr, "atrsim: trace:", err)
			os.Exit(1)
		}
	}

	// Gate on model invariants before reporting anything as a success.
	// A sampled run has no surviving pipeline to check: each window CPU is
	// discarded after its statistics are differenced.
	if cpu != nil {
		if err := cpu.Engine.CheckInvariants(); err != nil {
			fmt.Fprintln(os.Stderr, "atrsim: INVARIANT VIOLATION:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark      %s (%s), %d static instructions\n", p.Name, p.Class, prog.Len())
	fmt.Printf("scheme         %v, %d physical registers/class, redefine delay %d\n",
		scheme, *regs, *delay)
	fmt.Printf("committed      %d instructions in %d cycles (IPC %.3f)\n",
		res.Committed, res.Cycles, res.IPC)
	fmt.Printf("branches       %.2f%% conditional accuracy, %.2f%% indirect\n",
		100*res.BranchAccuracy, 100*res.IndirectAccuracy)
	fmt.Printf("recovery       %d mispredicts, %d flushes, %d exceptions\n",
		res.Mispredicts, res.Flushes, res.Exceptions)
	fmt.Printf("memory         %.2f%% L1D hit rate\n", 100*res.L1DHitRate)
	fmt.Printf("renaming       %d stalls, %.1f regs live on average\n",
		res.RenameStalls, res.AvgRegsLive)

	if cpu != nil {
		led := cpu.Engine.Ledger
		iu, un, vu := led.StateFractions()
		nb, ne, at := led.RegionFractions()
		fmt.Printf("lifecycle      in-use %.1f%%, unused %.1f%%, verified-unused %.1f%%\n",
			100*iu, 100*un, 100*vu)
		fmt.Printf("regions        non-branch %.1f%%, non-except %.1f%%, atomic %.1f%%\n",
			100*nb, 100*ne, 100*at)
		gr, gc, gm := led.EventGaps()
		fmt.Printf("atomic gaps    rename->redefine %.1f, ->consume %.1f, ->commit %.1f cycles\n",
			gr, gc, gm)
		st := cpu.Engine.Stats
		fmt.Printf("releases       atr %d, nonspec-er %d, commit %d, flush %d (claims %d)\n",
			st.Get("release.atr"), st.Get("release.er"),
			st.Get("release.commit"), st.Get("release.flush"), st.Get("atr.claims"))
		if *verbose {
			fmt.Printf("\ncounters:\n%s", st.String())
		}
	}
	if sampledRun {
		fmt.Printf("sampled        %s: %d windows, %d detailed, %d fast-forwarded\n",
			est.Plan, est.Windows, est.DetailInstr, est.FFInstr)
		fmt.Printf("error bars     IPC ±%.2f%%, mispredict ±%.2f%%, branch acc ±%.2f%%, L1D hit ±%.2f%% (95%% CI)\n",
			100*est.RelErr.IPC, 100*est.RelErr.MispredictRate,
			100*est.RelErr.BranchAcc, 100*est.RelErr.L1DHitRate)
	}
	fmt.Printf("simulated at   %.0fk instructions/second\n",
		float64(res.Committed)/elapsed.Seconds()/1000)
	if *batchK > 1 {
		fmt.Printf("lane check     %d lockstep lanes bit-identical (setup %.3fs, exec %.3fs)\n",
			bperf.Lanes, bperf.SetupSeconds, bperf.ExecSeconds)
	}

	if observer.Sampler != nil && *samplesPath != "" {
		writeSamples(observer.Sampler, *samplesPath)
	}
	if *jsonPath != "" {
		var estp *checkpoint.Estimate
		if sampledRun {
			estp = &est
		}
		writeManifest(*jsonPath, p, prog.Len(), cfg, cpu, res, elapsed, &observer, *tracePath, *o3Path, bperf, estp)
	}
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrsim:", err)
		os.Exit(1)
	}
	return f
}

func writeHeapProfile(path string) {
	f := mustCreate(path)
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim: memprofile:", err)
		os.Exit(1)
	}
}

func writeSamples(s *obs.Sampler, path string) {
	f := mustCreate(path)
	defer f.Close()
	var err error
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteCSV(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrsim: samples:", err)
		os.Exit(1)
	}
}

func writeManifest(path string, p workload.Profile, static int, cfg config.Config,
	cpu *pipeline.CPU, res pipeline.Result, elapsed time.Duration,
	observer *obs.Observer, tracePath, o3Path string, bperf batch.Perf,
	est *checkpoint.Estimate) {
	m := obs.NewManifest()
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	m.Benchmark = obs.BenchmarkInfo{Name: p.Name, Class: p.Class, Seed: p.Seed, StaticInstrs: static}
	m.Config = cfg
	m.Result = obs.RunResult{
		Cycles: res.Cycles, Committed: res.Committed, IPC: res.IPC,
		Mispredicts: res.Mispredicts, Flushes: res.Flushes,
		Exceptions: res.Exceptions, Interrupts: res.Interrupts,
		RenameStalls: res.RenameStalls, BranchAccuracy: res.BranchAccuracy,
		IndirectAccuracy: res.IndirectAccuracy, L1DHitRate: res.L1DHitRate,
		AvgRegsLive: res.AvgRegsLive, Halted: res.Halted,
	}
	if cpu != nil {
		led := cpu.Engine.Ledger
		iu, un, vu := led.StateFractions()
		nb, ne, at := led.RegionFractions()
		gr, gc, gm := led.EventGaps()
		m.Ledger = obs.LedgerSummary{
			Completed: led.Completed(),
			InUse:     iu, Unused: un, VerifiedUnused: vu,
			NonBranch: nb, NonExcept: ne, Atomic: at,
			GapRedefine: gr, GapConsume: gc, GapCommit: gm,
			ConsumerMean: led.ConsumerHist.Mean(),
		}
		m.Counters = cpu.Engine.Stats.Snapshot()
		for name, v := range cpu.Stats.Snapshot() {
			m.Counters[name] = v
		}
	}
	if est != nil {
		m.Sample = est.Info()
	}
	m.Perf = obs.PerfInfo{
		WallSeconds:  elapsed.Seconds(),
		InstrPerSec:  float64(res.Committed) / elapsed.Seconds(),
		CyclesPerSec: float64(res.Cycles) / elapsed.Seconds(),
		Lanes:        bperf.Lanes,
		SetupSeconds: bperf.SetupSeconds,
		ExecSeconds:  bperf.ExecSeconds,
	}
	if observer.Sampler != nil {
		m.Samples = observer.Sampler.Samples()
	}
	if observer.Tracer != nil {
		uops, commits, releases := observer.Tracer.Counts()
		m.Trace = &obs.TraceInfo{
			JSONLPath: tracePath, O3Path: o3Path,
			Uops: uops, Commits: commits, Releases: releases,
		}
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim: manifest:", err)
		os.Exit(1)
	}
	f := mustCreate(path)
	defer f.Close()
	if err := m.Encode(f); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim: manifest:", err)
		os.Exit(1)
	}
}
