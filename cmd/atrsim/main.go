// Command atrsim runs a single simulation of one benchmark profile under a
// chosen release scheme and prints the run summary, release accounting, and
// register lifetime statistics.
//
// Usage:
//
//	atrsim [-bench name] [-scheme baseline|nonspec-er|atomic|combined]
//	       [-regs N] [-n instructions] [-delay N] [-walk] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/workload"
)

func main() {
	bench := flag.String("bench", "omnetpp", "benchmark profile name (see -list)")
	schemeName := flag.String("scheme", "atomic", "release scheme: baseline, nonspec-er, atomic, combined")
	regs := flag.Int("regs", 64, "physical registers per class (0 = infinite)")
	n := flag.Uint64("n", 100_000, "instructions to simulate")
	delay := flag.Int("delay", 0, "ATR redefine-signal pipeline delay (Fig 13)")
	walk := flag.Bool("walk", false, "use walk-based SRT recovery instead of checkpoints")
	list := flag.Bool("list", false, "list benchmark profiles and exit")
	verbose := flag.Bool("v", false, "print internal release counters")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		return
	}
	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "atrsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	scheme, err := config.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atrsim:", err)
		os.Exit(2)
	}
	cfg := config.GoldenCove().WithScheme(scheme).WithPhysRegs(*regs)
	cfg.RedefineDelay = *delay
	cfg.WalkRecovery = *walk
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim:", err)
		os.Exit(2)
	}

	prog := p.Generate()
	cpu := pipeline.New(cfg, prog)
	start := time.Now()
	res := cpu.Run(*n)
	elapsed := time.Since(start)

	fmt.Printf("benchmark      %s (%s), %d static instructions\n", p.Name, p.Class, prog.Len())
	fmt.Printf("scheme         %v, %d physical registers/class, redefine delay %d\n",
		scheme, *regs, *delay)
	fmt.Printf("committed      %d instructions in %d cycles (IPC %.3f)\n",
		res.Committed, res.Cycles, res.IPC)
	fmt.Printf("branches       %.2f%% conditional accuracy, %.2f%% indirect\n",
		100*res.BranchAccuracy, 100*res.IndirectAccuracy)
	fmt.Printf("recovery       %d mispredicts, %d flushes, %d exceptions\n",
		res.Mispredicts, res.Flushes, res.Exceptions)
	fmt.Printf("memory         %.2f%% L1D hit rate\n", 100*res.L1DHitRate)
	fmt.Printf("renaming       %d stalls, %.1f regs live on average\n",
		res.RenameStalls, res.AvgRegsLive)

	led := cpu.Engine.Ledger
	iu, un, vu := led.StateFractions()
	nb, ne, at := led.RegionFractions()
	fmt.Printf("lifecycle      in-use %.1f%%, unused %.1f%%, verified-unused %.1f%%\n",
		100*iu, 100*un, 100*vu)
	fmt.Printf("regions        non-branch %.1f%%, non-except %.1f%%, atomic %.1f%%\n",
		100*nb, 100*ne, 100*at)
	gr, gc, gm := led.EventGaps()
	fmt.Printf("atomic gaps    rename->redefine %.1f, ->consume %.1f, ->commit %.1f cycles\n",
		gr, gc, gm)
	st := cpu.Engine.Stats
	fmt.Printf("releases       atr %d, nonspec-er %d, commit %d, flush %d (claims %d)\n",
		st.Get("release.atr"), st.Get("release.er"),
		st.Get("release.commit"), st.Get("release.flush"), st.Get("atr.claims"))
	if *verbose {
		fmt.Printf("\ncounters:\n%s", st.String())
	}
	fmt.Printf("simulated at   %.0fk instructions/second\n",
		float64(res.Committed)/elapsed.Seconds()/1000)

	if err := cpu.Engine.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "atrsim: INVARIANT VIOLATION:", err)
		os.Exit(1)
	}
}
