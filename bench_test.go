// Package atr's top-level benchmarks regenerate every table and figure of
// the paper (run with `go test -bench=. -benchmem`). Each BenchmarkFigNN
// executes the corresponding experiment end to end and reports the figure's
// headline quantity as a custom metric, so `go test -bench Fig` reproduces
// the evaluation section. Microbenchmarks of the simulator's hot structures
// follow.
package atr

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"atr/internal/bpred"
	"atr/internal/cache"
	"atr/internal/checkpoint"
	"atr/internal/config"
	"atr/internal/core"
	"atr/internal/experiments"
	"atr/internal/isa"
	"atr/internal/logicsim"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/program"
	"atr/internal/stats"
	"atr/internal/workload"
)

// benchInstr is the per-simulation instruction budget for figure benches;
// kept small so the full sweep finishes in minutes. Increase for tighter
// numbers (cmd/atrsweep -n takes any budget).
const benchInstr = 10_000

func BenchmarkFig01RFScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig1(r, io.Discard)
		b.ReportMetric(res.Avg64Ratio, "norm-ipc@64")
	}
}

func BenchmarkFig04Lifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig4(r, io.Discard)
		b.ReportMetric(100*res.IntUnused, "int-unused-%")
		b.ReportMetric(100*res.IntVerified, "int-verified-%")
	}
}

func BenchmarkFig06AtomicRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig6(r, io.Discard)
		b.ReportMetric(100*res.IntAtomic, "int-atomic-%")
		b.ReportMetric(100*res.FPAtomic, "fp-atomic-%")
	}
}

func BenchmarkFig10Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig10(r, io.Discard)
		b.ReportMetric(res.Avg[64][config.SchemeATR]["int"], "atr64-int-%")
		b.ReportMetric(res.Avg[64][config.SchemeNonSpecER]["int"], "er64-int-%")
		b.ReportMetric(res.Avg[224][config.SchemeATR]["int"], "atr224-int-%")
	}
}

func BenchmarkFig11RFSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig11(r, io.Discard)
		b.ReportMetric(res.IntAvg[0], "atr-int@64-%")
		b.ReportMetric(res.IntAvg[len(res.IntAvg)-1], "atr-int@280-%")
	}
}

func BenchmarkFig12ConsumerHist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig12(r, io.Discard)
		b.ReportMetric(res.AvgMean, "consumers/region")
	}
}

func BenchmarkFig13PipelineDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig13(r, io.Discard)
		b.ReportMetric(res.IntAvg[0]-res.IntAvg[2], "delay2-cost-pts")
	}
}

func BenchmarkFig14EventGaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig14(r, io.Discard)
		var redef, commit float64
		for _, v := range res.PerBench {
			redef += v[0]
			commit += v[2]
		}
		n := float64(len(res.PerBench))
		b.ReportMetric(redef/n, "to-redefine-cyc")
		b.ReportMetric(commit/n, "to-commit-cyc")
	}
}

func BenchmarkFig15Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchInstr)
		res := experiments.Fig15(r, io.Discard)
		b.ReportMetric(100*res.Reduction[config.SchemeATR], "atr-rf-reduction-%")
		b.ReportMetric(100*res.Reduction[config.SchemeCombined], "combined-rf-reduction-%")
	}
}

func BenchmarkLogicSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Logic(io.Discard)
		b.ReportMetric(float64(res.Naive.Gates), "gates")
		b.ReportMetric(float64(res.Naive.Levels), "levels")
	}
}

// ------------------------------------------------------- microbenchmarks

// BenchmarkPipeline measures end-to-end simulation throughput
// (instructions simulated per wall-clock second appear as ns/op / 20000).
func BenchmarkPipeline(b *testing.B) {
	for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeCombined} {
		b.Run(scheme.String(), func(b *testing.B) {
			p, _ := workload.ByName("exchange2")
			prog := p.Generate()
			cfg := config.GoldenCove().WithScheme(scheme).WithPhysRegs(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpu := pipeline.New(cfg, prog)
				res := cpu.Run(20_000)
				b.ReportMetric(float64(res.Committed), "instructions")
			}
		})
	}
}

// BenchmarkRename measures the renaming engine alone: allocate, claim,
// consume, release.
func BenchmarkRename(b *testing.B) {
	for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeATR} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := config.GoldenCove().WithScheme(scheme).WithPhysRegs(128)
			e := core.NewEngine(cfg)
			br := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
			e.Rename(&br, 0)
			in := isa.NewInst(isa.OpALU, []isa.Reg{isa.R1}, []isa.Reg{isa.R2, isa.R1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := e.Rename(&in, uint64(i))
				for j := 0; j < out.NumSrcs; j++ {
					e.ConsumerIssued(out.Srcs[j], uint64(i))
				}
				e.ProducerCompleted(out.Dsts[0].New, uint64(i))
				e.RedefinerPrecommitted(out.Dsts[0], uint64(i))
				e.RedefinerCommitted(out.Dsts[0], uint64(i))
			}
		})
	}
}

func BenchmarkTAGEPredict(b *testing.B) {
	t := bpred.NewTAGE(bpred.TAGEConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 512)
		p := t.Predict(pc)
		t.Update(pc, p, i%3 != 0)
	}
}

func BenchmarkCacheHierarchy(b *testing.B) {
	h := cache.NewHierarchy(config.GoldenCove())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessData(uint64(i%100_000)*64, i%4 == 0, uint64(i))
	}
}

func BenchmarkEmulator(b *testing.B) {
	p, _ := workload.ByName("gcc")
	prog := p.Generate()
	e := program.NewEmulator(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Step(); !ok {
			e = program.NewEmulator(prog)
		}
	}
}

func BenchmarkFlushWalk(b *testing.B) {
	// One misprediction recovery per iteration: fill a wrong path, flush.
	p := workload.Micro(77)
	p.BranchBias = 0.5 // mispredict-heavy
	prog := p.Generate()
	cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(96)
	cpu := pipeline.New(cfg, prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Run(uint64((i + 1) * 200))
	}
}

func BenchmarkBulkMarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logicsim.BuildBulkMark(8, 16)
	}
}

// ------------------------------------------- scheduler microbenchmarks

// ilpKernel is a wide independent-operation loop: every ALU op in the body
// writes a distinct register from a loop-invariant source, so the scheduler
// sees full-width issue every cycle.
func ilpKernel() *program.Program {
	b := program.NewBuilder(11, 12)
	b.Label("top")
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6,
		isa.R7, isa.R8, isa.R9, isa.R10, isa.R11, isa.R12}
	for i, r := range regs {
		b.ALU(r, isa.R0, isa.RegInvalid, int64(i+1))
	}
	b.Jump("top")
	return b.MustBuild()
}

// chainKernel is a serial dependence chain: each op reads the previous one's
// result, so at most one instruction is ready per cycle and the wakeup path
// dominates.
func chainKernel() *program.Program {
	b := program.NewBuilder(21, 22)
	b.Label("top")
	for i := 0; i < 12; i++ {
		b.ALU(isa.R1, isa.R1, isa.RegInvalid, 1)
	}
	b.Jump("top")
	return b.MustBuild()
}

// storeKernel alternates stores with loads from the same addresses, keeping
// the store queue full and exercising STA/STD split capture and
// store-to-load forwarding on every iteration.
func storeKernel() *program.Program {
	b := program.NewBuilder(31, 32)
	b.Label("top")
	for i := 0; i < 6; i++ {
		b.ALU(isa.R1, isa.R1, isa.RegInvalid, 1)
		b.Store(isa.R0, isa.R1, 0x1000, 1<<16, int64(i)*8)
		b.Load(isa.Reg(int(isa.R2)+i), isa.R0, 0x1000, 1<<16, int64(i)*8)
	}
	b.Jump("top")
	return b.MustBuild()
}

// BenchmarkScheduler measures the pipeline's scheduling hot paths on three
// kernel shapes, for both the event-driven scheduler and the scan reference.
// One op is 1000 committed instructions on a persistent CPU, so allocs/op is
// the steady-state allocation rate (the event scheduler's is asymptotically
// zero; TestSteadyStateZeroAlloc enforces it exactly).
func BenchmarkScheduler(b *testing.B) {
	kernels := []struct {
		name string
		prog *program.Program
	}{
		{"ilp", ilpKernel()},
		{"chain", chainKernel()},
		{"stores", storeKernel()},
	}
	scheds := []struct {
		name string
		kind pipeline.SchedulerKind
	}{
		{"event", pipeline.SchedulerEvent},
		{"scan", pipeline.SchedulerScan},
	}
	for _, k := range kernels {
		for _, s := range scheds {
			b.Run(k.name+"/"+s.name, func(b *testing.B) {
				cpu := pipeline.NewWithScheduler(config.GoldenCove(), k.prog, s.kind)
				b.ReportAllocs()
				b.ResetTimer()
				var target uint64
				var cycles uint64
				for i := 0; i < b.N; i++ {
					target += 1000
					cycles = cpu.Run(target).Cycles
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(cycles)/sec, "cycles/s")
				}
			})
		}
	}
}

// BenchmarkFig10Throughput measures end-to-end simulator throughput over the
// full Figure 10 sweep grid under each scheduler implementation — the
// headline number for the event-driven scheduler rework.
func BenchmarkFig10Throughput(b *testing.B) {
	scheds := []struct {
		name string
		kind pipeline.SchedulerKind
	}{
		{"event", pipeline.SchedulerEvent},
		{"scan", pipeline.SchedulerScan},
	}
	for _, s := range scheds {
		b.Run(s.name, func(b *testing.B) {
			var t experiments.Throughput
			for i := 0; i < b.N; i++ {
				t = experiments.SchedulerSweep(s.kind, benchInstr)
			}
			b.ReportMetric(t.CyclesPerSec(), "cycles/s")
			b.ReportMetric(t.InstrPerSec(), "instr/s")
		})
	}
}

// BenchmarkBatchedSweep compares solo (K=1) and lockstep-batched (K=4)
// execution of the Figure 10 grid on the event scheduler: identical units,
// identical results (TestSweepBatchDeterminism proves byte-identity), the
// only difference being whether profile-sharing units run as lanes over
// one shared program image. The K=4/K=1 ratio is the locality win of
// lockstep batching in isolation.
func BenchmarkBatchedSweep(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var t experiments.Throughput
			for i := 0; i < b.N; i++ {
				t = experiments.SchedulerSweepBatch(pipeline.SchedulerEvent, benchInstr, k)
			}
			b.ReportMetric(t.CyclesPerSec(), "cycles/s")
			b.ReportMetric(t.InstrPerSec(), "instr/s")
		})
	}
}

// BenchmarkSampledThroughput is the CI gate for sampled execution: the
// exact and sampled sub-benchmarks simulate the same 2M-instruction gcc run
// in one invocation, each reporting simulated cycles per wall second, and
// CI requires the sampled rate to be at least 5x the exact rate. Sampled
// cycles are the extrapolated estimate, which tracks the exact count to
// within the plan's error bars, so the cycles/s ratio is the wall-clock
// speedup.
func BenchmarkSampledThroughput(b *testing.B) {
	const instr = 2_000_000
	plan := checkpoint.Plan{Period: 100_000, Window: 2000, Warmup: 500}
	p, ok := workload.ByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	prog := p.Generate()
	cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64)

	b.Run("exact", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res := pipeline.New(cfg, prog).Run(instr)
			cycles += res.Cycles
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(cycles)/sec, "cycles/s")
		}
	})
	b.Run("sampled", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			est := checkpoint.Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
			cycles += est.Result.Cycles
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(cycles)/sec, "cycles/s")
		}
	})
}

// BenchmarkCounters measures the bookkeeping hot paths that run once or
// more per simulated instruction: pre-resolved handle increments (the path
// the engine and pipeline use), the string-keyed compatibility path, and
// folding one register lifetime into the ledger. All three must be
// allocation-free — CI fails the build if any reports a nonzero allocs/op.
func BenchmarkCounters(b *testing.B) {
	b.Run("handle", func(b *testing.B) {
		c := stats.NewCounters()
		h := c.Handle("release.atr")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Add(h, 1)
		}
		if c.Value(h) != uint64(b.N) {
			b.Fatalf("counter = %d, want %d", c.Value(h), b.N)
		}
	})
	b.Run("string", func(b *testing.B) {
		c := stats.NewCounters()
		c.Inc("release.atr", 0) // intern outside the timed region
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc("release.atr", 1)
		}
	})
	b.Run("ledger", func(b *testing.B) {
		led := stats.NewLifetimeLedger()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := uint64(i)
			l := stats.RegLifetime{
				Renamed: c, LastConsumed: c + 3, Redefined: c + 4,
				Precommitted: c + 6, Committed: c + 8,
				Consumers: 2, Region: stats.RegionAtomic,
			}
			led.Record(&l)
		}
		if led.Completed() != uint64(b.N) {
			b.Fatalf("ledger completed = %d, want %d", led.Completed(), b.N)
		}
	})
}

// BenchmarkSweepWarm measures experiment-runner throughput on a small
// Fig 10-shaped grid (four integer profiles × two RF sizes × all schemes)
// with a fresh runner per iteration: program generation is amortized by the
// runner's shared program cache, so this tracks the sweep-side win of
// generating each profile once instead of once per configuration.
func BenchmarkSweepWarm(b *testing.B) {
	var ps []workload.Profile
	for _, p := range workload.Profiles() {
		if p.Class == "int" {
			ps = append(ps, p)
			if len(ps) == 4 {
				break
			}
		}
	}
	var cfgs []config.Config
	for _, n := range []int{64, 224} {
		for _, s := range config.Schemes() {
			cfgs = append(cfgs, config.GoldenCove().WithPhysRegs(n).WithScheme(s))
		}
	}
	b.ResetTimer()
	var runs int
	var cycles uint64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(4000)
		r.Prefetch(ps, cfgs)
		var instr uint64
		runs, instr, cycles = r.Totals()
		_ = instr
	}
	if runs != len(ps)*len(cfgs) {
		b.Fatalf("runs = %d, want %d", runs, len(ps)*len(cfgs))
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cycles)*float64(b.N)/sec, "cycles/s")
	}
}

// TestEmitBenchManifest writes BENCH_sim.json — a run manifest recording
// simulator throughput on the reference workload — when ATR_BENCH_JSON=1
// is set (e.g. by CI), so benchmark results become diffable artifacts.
func TestEmitBenchManifest(t *testing.T) {
	if os.Getenv("ATR_BENCH_JSON") == "" {
		t.Skip("set ATR_BENCH_JSON=1 to emit BENCH_sim.json")
	}
	p, _ := workload.ByName("exchange2")
	cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64)
	cpu := pipeline.New(cfg, p.Generate())
	sampler := obs.NewSampler(1000)
	cpu.Observe(&obs.Observer{Sampler: sampler})
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	res := cpu.Run(20_000)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	m := obs.NewManifest()
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	m.Benchmark = obs.BenchmarkInfo{Name: p.Name, Class: p.Class, Seed: p.Seed}
	m.Config = cfg
	m.Result = obs.RunResult{
		Cycles: res.Cycles, Committed: res.Committed, IPC: res.IPC,
		Mispredicts: res.Mispredicts, Flushes: res.Flushes,
		RenameStalls: res.RenameStalls, BranchAccuracy: res.BranchAccuracy,
		IndirectAccuracy: res.IndirectAccuracy, L1DHitRate: res.L1DHitRate,
		AvgRegsLive: res.AvgRegsLive, Halted: res.Halted,
	}
	m.Perf = obs.PerfInfo{
		WallSeconds:    elapsed.Seconds(),
		InstrPerSec:    float64(res.Committed) / elapsed.Seconds(),
		CyclesPerSec:   float64(res.Cycles) / elapsed.Seconds(),
		AllocsPerInstr: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Committed),
	}
	m.Samples = sampler.Samples()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create("BENCH_sim.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Encode(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_sim.json: %.0f instr/s, IPC %.3f", m.Perf.InstrPerSec, res.IPC)
}
