module atr

go 1.22
